package measures

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isomorph"
	"repro/internal/pattern"
)

// MI is the minimum instance support measure introduced in Section 3.2: the
// minimum, over all transitive node subsets T of subgraphs of the pattern, of
// the number of distinct set-images {f_i(T)} across occurrences.
//
// Because every singleton {v} is a transitive node subset, σ_MI ≤ σ_MNI
// (Theorem 3.4); because a cover of the minimizing subset's images covers the
// whole occurrence hypergraph, σ_MVC ≤ σ_MI (Theorem 3.6). MI is
// anti-monotonic (Theorem 3.2) and linear-time in the number of occurrences
// once the pattern's transitive node subsets are known (Theorem 3.3); the
// subsets depend only on the (small) pattern, not on the data graph.
type MI struct {
	// Policy selects which subgraphs of the pattern contribute transitive
	// node subsets. The zero value selects isomorph.PatternOnly (fast but not
	// anti-monotonic under every extension); most callers should use
	// DefaultMIPolicy, the faithful reading of Definition 3.2.4.
	Policy isomorph.SubgraphPolicy
}

// DefaultMIPolicy is the subgraph policy used by the registry and the public
// facade: orbits of every connected (partial) subgraph of the pattern. It is
// the only policy that is anti-monotonic under arbitrary pattern extensions.
const DefaultMIPolicy = isomorph.AllSubgraphs

// NewMI returns the MI measure with the default subgraph policy.
func NewMI() MI { return MI{Policy: DefaultMIPolicy} }

// Name implements Measure.
func (MI) Name() string { return NameMI }

// Compute implements Measure.
func (m MI) Compute(ctx *core.Context) (Result, error) {
	if err := requireMaterialized(ctx, NameMI); err != nil {
		return Result{}, err
	}
	occs := ctx.Occurrences()
	if len(occs) == 0 {
		return Result{Measure: NameMI, Value: 0, Exact: true}, nil
	}
	policy := m.Policy
	subsets := ctx.TransitiveNodeSubsets(policy)
	if len(subsets) == 0 {
		return Result{}, fmt.Errorf("measures: pattern yielded no transitive node subsets")
	}
	minCount := -1
	var minSubset []pattern.NodeID
	for _, subset := range subsets {
		images := make(map[string]bool, len(occs))
		for _, o := range occs {
			images[imageKey(o.SubsetImage(subset))] = true
		}
		if minCount < 0 || len(images) < minCount {
			minCount = len(images)
			minSubset = subset
		}
	}
	return Result{
		Measure: NameMI,
		Value:   float64(minCount),
		Exact:   true,
		Witness: fmt.Sprintf("minimizing transitive node subset %v with %d distinct set images", minSubset, minCount),
	}, nil
}
