package measures

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/lp"
)

// MVC is the minimum vertex cover support measure of Section 3.3: the size
// of a smallest vertex set of the occurrence (or instance) hypergraph that
// intersects every hyperedge. MVC is anti-monotonic (Theorem 3.5), bounded by
// MI from above (Theorem 3.6) and by MIES/MIS from below (Theorem 4.5), but
// computing it exactly is NP-hard. The exact solver is branch and bound; the
// approximate variant is the textbook k-approximation for k-uniform
// hypergraphs (take all vertices of an uncovered edge).
type MVC struct {
	// UseInstances selects the instance hypergraph instead of the occurrence
	// hypergraph. Both hypergraphs give the same cover sizes when the pattern
	// has no non-identity automorphisms; with automorphisms the edge
	// multisets coincide as vertex sets, so the value is identical — the
	// option mainly exists to exercise both code paths.
	UseInstances bool
	// Approximate skips the exact solver and reports the matching-based
	// k-approximation.
	Approximate bool
	// MaxNodes bounds the exact solver's search; zero means DefaultMaxNodes.
	MaxNodes int
}

// DefaultMaxNodes is the default branch-and-bound node budget for the exact
// NP-hard solvers. The budget exists so that mining loops never hang on one
// adversarial pattern; when it is exhausted the best bound found so far is
// returned with Exact=false. Exact solvers first try to certify a greedy
// solution with the LP relaxation (see mvcLPShortcut), so the budget is only
// consumed on genuinely hard instances.
const DefaultMaxNodes = 200_000

// Name implements Measure.
func (m MVC) Name() string {
	if m.Approximate {
		return NameMVCApprox
	}
	return NameMVC
}

// Compute implements Measure.
func (m MVC) Compute(ctx *core.Context) (Result, error) {
	if err := requireMaterialized(ctx, m.Name()); err != nil {
		return Result{}, err
	}
	h := ctx.OccurrenceHypergraph()
	if m.UseInstances {
		h = ctx.InstanceHypergraph()
	}
	if h.NumEdges() == 0 {
		return Result{Measure: m.Name(), Value: 0, Exact: true}, nil
	}
	if m.Approximate {
		res := h.MatchingVertexCover()
		return Result{
			Measure: NameMVCApprox,
			Value:   float64(res.Size),
			Exact:   false,
			Witness: fmt.Sprintf("matching-based cover of %d vertices (k-approximation)", res.Size),
		}, nil
	}
	// LP certificate shortcut: if a polynomial heuristic cover already
	// matches the ceiling of the fractional optimum, it is provably minimum
	// (sigma_MVC is an integer >= nu_MVC), so the exponential search can be
	// skipped entirely.
	if size, ok, err := mvcLPShortcut(h); err != nil {
		return Result{}, err
	} else if ok {
		return Result{
			Measure: NameMVC,
			Value:   float64(size),
			Exact:   true,
			Witness: fmt.Sprintf("greedy cover of %d vertices certified optimal by the LP relaxation", size),
		}, nil
	}
	budget := m.MaxNodes
	if budget == 0 {
		budget = DefaultMaxNodes
	}
	res := h.MinimumVertexCover(budget)
	return Result{
		Measure: NameMVC,
		Value:   float64(res.Size),
		Exact:   res.Exact,
		Witness: fmt.Sprintf("vertex cover %v", res.Cover),
	}, nil
}

// mvcLPShortcut reports whether the best polynomial heuristic cover of h is
// certified optimal by the LP lower bound, and if so its size.
func mvcLPShortcut(h *hypergraph.Hypergraph) (int, bool, error) {
	best := h.GreedyVertexCover().Size
	if alt := h.MatchingVertexCover().Size; alt < best {
		best = alt
	}
	frac, err := lp.FractionalVertexCover(h)
	if err != nil {
		return 0, false, fmt.Errorf("measures: LP certificate for MVC: %w", err)
	}
	if frac.Status != lp.Optimal {
		return 0, false, nil
	}
	lower := int(math.Ceil(frac.Value - 1e-6))
	return best, best <= lower, nil
}

// NuMVC is the polynomial-time LP relaxation of MVC (Definition 4.3.1): the
// optimal value of the fractional vertex cover LP. By LP duality it equals
// ν_MIES (Theorem 4.6) and it is sandwiched between σ_MIES and σ_MVC.
type NuMVC struct {
	// UseInstances selects the instance hypergraph.
	UseInstances bool
}

// Name implements Measure.
func (NuMVC) Name() string { return NameNuMVC }

// Compute implements Measure.
func (m NuMVC) Compute(ctx *core.Context) (Result, error) {
	if err := requireMaterialized(ctx, NameNuMVC); err != nil {
		return Result{}, err
	}
	h := ctx.OccurrenceHypergraph()
	if m.UseInstances {
		h = ctx.InstanceHypergraph()
	}
	res, err := lp.FractionalVertexCover(h)
	if err != nil {
		return Result{}, fmt.Errorf("measures: fractional vertex cover: %w", err)
	}
	if res.Status != lp.Optimal {
		return Result{}, fmt.Errorf("measures: fractional vertex cover LP ended with status %v", res.Status)
	}
	return Result{
		Measure: NameNuMVC,
		Value:   res.Value,
		Exact:   true,
		Witness: fmt.Sprintf("fractional cover over %d vertices", h.NumVertices()),
	}, nil
}
