// Package measures implements every support measure studied in the paper on
// top of the hypergraph framework of package core:
//
//   - σ_MNI and σ_MNI(k)  — minimum-image-based support (Bringmann & Nijssen)
//   - σ_MI                — minimum instance support (Section 3.2, new)
//   - σ_MVC               — minimum vertex cover support (Section 3.3, new)
//   - σ_MIS / σ_MIES      — overlap-graph / hypergraph independent set support
//   - ν_MVC, ν_MIES       — polynomial-time LP relaxations (Section 4.3)
//   - MCP                 — greedy minimum clique partition baseline
//   - harmful- and structural-overlap variants of MIS (Section 4.5)
//
// All measures implement the Measure interface and are registered in a
// Registry so that CLIs, examples and the mining loop can select them by
// name. The package also provides the bounding-chain verifier for
//
//	σ_MIS = σ_MIES ≤ ν_MIES = ν_MVC ≤ σ_MVC ≤ σ_MI ≤ σ_MNI
//
// and an anti-monotonicity checker used by the property tests.
package measures

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Result is the outcome of computing one support measure for one pattern in
// one data graph.
type Result struct {
	// Measure is the canonical measure name (one of the Name* constants).
	Measure string
	// Value is the support. Integral measures report whole numbers; the LP
	// relaxations may report fractional values.
	Value float64
	// Exact reports whether the value is provably the measure's true value.
	// It is false when a branch-and-bound solver hit its node budget or when
	// the measure itself is an approximation (greedy variants).
	Exact bool
	// Witness optionally carries a human-readable description of the
	// certificate behind the value (a cover, an independent set, the
	// minimizing node subset, ...).
	Witness string
}

// String implements fmt.Stringer.
func (r Result) String() string {
	exact := "exact"
	if !r.Exact {
		exact = "approx"
	}
	return fmt.Sprintf("%s=%.4g (%s)", r.Measure, r.Value, exact)
}

// Measure computes a support value from a prepared Context.
type Measure interface {
	// Name returns the canonical name of the measure.
	Name() string
	// Compute evaluates the measure on the context.
	Compute(ctx *core.Context) (Result, error)
}

// Canonical measure names used throughout the library, the CLIs and the
// benchmark tables.
const (
	NameMNI            = "MNI"
	NameMNIK           = "MNIk"
	NameMI             = "MI"
	NameMVC            = "MVC"
	NameMVCApprox      = "MVC-approx"
	NameMIS            = "MIS"
	NameMIES           = "MIES"
	NameMIESGreedy     = "MIES-greedy"
	NameNuMVC          = "nuMVC"
	NameNuMIES         = "nuMIES"
	NameMCP            = "MCP"
	NameMISHarmful     = "MIS-HO"
	NameMISStructural  = "MIS-SO"
	NameOccurrences    = "occurrences"
	NameInstances      = "instances"
	nameUnknownMeasure = "unknown"
)

// Registry maps measure names to constructors so that callers can select
// measures by name (e.g. from a CLI flag).
type Registry struct {
	factories map[string]func() Measure
}

// NewRegistry returns a registry pre-populated with every measure in this
// package using its default configuration.
func NewRegistry() *Registry {
	r := &Registry{factories: make(map[string]func() Measure)}
	r.Register(NameMNI, func() Measure { return MNI{} })
	r.Register(NameMNIK, func() Measure { return MNIK{K: 2} })
	r.Register(NameMI, func() Measure { return NewMI() })
	r.Register(NameMVC, func() Measure { return MVC{} })
	r.Register(NameMVCApprox, func() Measure { return MVC{Approximate: true} })
	r.Register(NameMIS, func() Measure { return MIS{} })
	r.Register(NameMIES, func() Measure { return MIES{} })
	r.Register(NameMIESGreedy, func() Measure { return MIES{Approximate: true} })
	r.Register(NameNuMVC, func() Measure { return NuMVC{} })
	r.Register(NameNuMIES, func() Measure { return NuMIES{} })
	r.Register(NameMCP, func() Measure { return MCP{} })
	r.Register(NameMISHarmful, func() Measure { return MIS{Overlap: HarmfulOverlap} })
	r.Register(NameMISStructural, func() Measure { return MIS{Overlap: StructuralOverlap} })
	r.Register(NameOccurrences, func() Measure { return RawCount{Instances: false} })
	r.Register(NameInstances, func() Measure { return RawCount{Instances: true} })
	return r
}

// Register adds (or replaces) a measure factory under the given name.
func (r *Registry) Register(name string, factory func() Measure) {
	r.factories[name] = factory
}

// New returns a fresh measure instance for the given name.
func (r *Registry) New(name string) (Measure, error) {
	f, ok := r.factories[name]
	if !ok {
		return nil, fmt.Errorf("measures: unknown measure %q (known: %v)", name, r.Names())
	}
	return f(), nil
}

// Names returns the registered measure names in sorted order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// requireMaterialized returns an error when a measure that needs the full
// occurrence list or a hypergraph is computed on a streaming context. Only
// MNI and the raw counts run on streamed aggregates; everything else needs a
// context built without core.Options.Streaming.
func requireMaterialized(ctx *core.Context, name string) error {
	if ctx.Materialized() {
		return nil
	}
	return fmt.Errorf("measures: %s requires a materialized context (build it without Streaming)", name)
}

// RawCount reports the plain occurrence or instance count. Neither is a valid
// (anti-monotonic) support measure — the paper uses them as reference values,
// and so do the experiments.
type RawCount struct {
	// Instances selects the instance count; otherwise the occurrence count.
	Instances bool
}

// Name implements Measure.
func (m RawCount) Name() string {
	if m.Instances {
		return NameInstances
	}
	return NameOccurrences
}

// Compute implements Measure.
func (m RawCount) Compute(ctx *core.Context) (Result, error) {
	if m.Instances {
		return Result{Measure: NameInstances, Value: float64(ctx.NumInstances()), Exact: true}, nil
	}
	return Result{Measure: NameOccurrences, Value: float64(ctx.NumOccurrences()), Exact: true}, nil
}
