package measures_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/measures"
	"repro/internal/pattern"
)

// TestMNIOnDeltaContext checks that MNI and the raw counts read the live
// delta-maintained domain tables through DeltaContext.Context exactly as
// they read a from-scratch streamed context — before and after mutations —
// while the materialized-only measures keep refusing the streaming shape.
func TestMNIOnDeltaContext(t *testing.T) {
	tri := pattern.MustNew(graph.NewBuilder("tri").Vertices(1, 0, 1, 2).Cycle(0, 1, 2).MustBuild())
	g := gen.BarabasiAlbert(180, 3, gen.UniformLabels{K: 2}, 11)
	d, err := core.NewDeltaContext(g, tri, core.Options{})
	if err != nil {
		t.Fatalf("NewDeltaContext: %v", err)
	}
	defer d.Close()

	check := func(tag string) {
		t.Helper()
		fresh := core.MustNewContext(g.Clone(), tri, core.Options{Parallelism: 1, Streaming: true})
		live := d.Context()
		for _, m := range []measures.Measure{measures.MNI{}, measures.RawCount{}, measures.RawCount{Instances: true}} {
			got, err := m.Compute(live)
			if err != nil {
				t.Fatalf("%s: %s on delta context: %v", tag, m.Name(), err)
			}
			want, err := m.Compute(fresh)
			if err != nil {
				t.Fatalf("%s: %s on scratch context: %v", tag, m.Name(), err)
			}
			if got != want {
				t.Fatalf("%s: %s = %+v on delta context, %+v on scratch", tag, m.Name(), got, want)
			}
		}
		if _, err := (measures.MVC{}).Compute(live); err == nil {
			t.Fatalf("%s: MVC accepted the streaming delta context", tag)
		}
	}

	check("initial")
	ids := g.SortedVertices()
	g.MustAddEdge(ids[1], ids[97])
	g.MustAddVertex(50_000, 1)
	g.MustAddEdge(50_000, ids[1])
	if err := d.Refresh(); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	check("after mutations")

	// The Context view is an immutable copy: a later mutation + refresh must
	// not retroactively change a previously materialized view.
	before := d.Context()
	occ := before.NumOccurrences()
	g.MustAddEdge(ids[2], ids[55])
	g.MustAddEdge(ids[2], ids[56])
	if err := d.Refresh(); err != nil {
		t.Fatalf("second Refresh: %v", err)
	}
	if before.NumOccurrences() != occ {
		t.Fatalf("materialized view changed after refresh: %d -> %d occurrences", occ, before.NumOccurrences())
	}
}
