package measures

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// Evaluation holds the results of computing several measures on one context.
type Evaluation struct {
	// Context is the evaluated pattern/graph context.
	Context *core.Context
	// Results maps measure name to result.
	Results map[string]Result
}

// Evaluate computes the given measures on a context. When measures is empty
// the full default set is evaluated: occurrence/instance counts, MNI, MI,
// MVC (exact and approximate), MIES, MIS, the LP relaxations and MCP. On a
// streaming context the default set shrinks to the measures computable from
// streamed aggregates (the raw counts and MNI); explicitly requested measures
// are never substituted and error out if they need materialized state.
func Evaluate(ctx *core.Context, ms ...Measure) (*Evaluation, error) {
	if len(ms) == 0 {
		if ctx.Materialized() {
			ms = DefaultSet()
		} else {
			ms = StreamingSet()
		}
	}
	ev := &Evaluation{Context: ctx, Results: make(map[string]Result, len(ms))}
	for _, m := range ms {
		res, err := m.Compute(ctx)
		if err != nil {
			return nil, fmt.Errorf("measures: evaluating %s: %w", m.Name(), err)
		}
		ev.Results[res.Measure] = res
	}
	return ev, nil
}

// DefaultSet returns the measures evaluated when no explicit selection is
// given.
func DefaultSet() []Measure {
	return []Measure{
		RawCount{Instances: false},
		RawCount{Instances: true},
		MNI{},
		NewMI(),
		MVC{},
		MVC{Approximate: true},
		MIES{},
		MIS{},
		NuMVC{},
		NuMIES{},
		MCP{},
	}
}

// StreamingSet returns the measures computable on a streaming context: the
// raw occurrence/instance counts and MNI, all of which are maintained
// incrementally during enumeration.
func StreamingSet() []Measure {
	return []Measure{
		RawCount{Instances: false},
		RawCount{Instances: true},
		MNI{},
	}
}

// SupportsStreaming reports whether the measure can be computed on a
// streaming context, i.e. from the incrementally maintained aggregates alone
// (membership in StreamingSet by canonical name). Callers such as the miner
// use it to auto-select streaming contexts when materialization would be
// wasted.
func SupportsStreaming(m Measure) bool {
	for _, s := range StreamingSet() {
		if s.Name() == m.Name() {
			return true
		}
	}
	return false
}

// Value returns the value of the named measure, or an error if it was not
// part of the evaluation.
func (ev *Evaluation) Value(name string) (float64, error) {
	r, ok := ev.Results[name]
	if !ok {
		return 0, fmt.Errorf("measures: evaluation has no result for %q", name)
	}
	return r.Value, nil
}

// Names returns the evaluated measure names in sorted order.
func (ev *Evaluation) Names() []string {
	out := make([]string, 0, len(ev.Results))
	for n := range ev.Results {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// chainTolerance absorbs LP solver round-off when comparing fractional and
// integral measure values.
const chainTolerance = 1e-6

// VerifyBoundingChain checks every inequality of the paper's bounding chain
// (Section 4.4)
//
//	σ_MIS = σ_MIES ≤ ν_MIES = ν_MVC ≤ σ_MVC ≤ σ_MI ≤ σ_MNI
//
// that is checkable from the measures present in the evaluation, and returns
// an error describing the first violated relation. Relations involving
// measures that were not evaluated (or not computed exactly) are skipped, so
// the check never produces false alarms from truncated solvers.
func (ev *Evaluation) VerifyBoundingChain() error {
	exact := func(name string) (float64, bool) {
		r, ok := ev.Results[name]
		if !ok || !r.Exact {
			return 0, false
		}
		return r.Value, true
	}

	type relation struct {
		left, right string
		equal       bool
	}
	relations := []relation{
		{NameMIS, NameMIES, true},
		{NameNuMIES, NameNuMVC, true},
		{NameMIES, NameNuMIES, false},
		{NameMIS, NameNuMVC, false},
		{NameNuMVC, NameMVC, false},
		{NameMVC, NameMI, false},
		{NameMI, NameMNI, false},
		{NameMIES, NameMVC, false},
		{NameMIS, NameMNI, false},
	}
	for _, rel := range relations {
		l, okL := exact(rel.left)
		r, okR := exact(rel.right)
		if !okL || !okR {
			continue
		}
		if rel.equal {
			if diff := l - r; diff > chainTolerance || diff < -chainTolerance {
				return fmt.Errorf("measures: bounding chain violated: %s=%.6f should equal %s=%.6f", rel.left, l, rel.right, r)
			}
			continue
		}
		if l > r+chainTolerance {
			return fmt.Errorf("measures: bounding chain violated: %s=%.6f should be <= %s=%.6f", rel.left, l, rel.right, r)
		}
	}
	return nil
}

// AntiMonotonicityReport records the outcome of checking σ(p, G) ≥ σ(P, G)
// for one measure on one (subpattern, superpattern) pair.
type AntiMonotonicityReport struct {
	Measure    string
	SubValue   float64
	SuperValue float64
	Holds      bool
	// Exact reports whether both values were computed exactly. When an
	// NP-hard solver hit its node budget the reported value is only an upper
	// bound, so a "violation" with Exact == false is not a counterexample to
	// the measure's anti-monotonicity.
	Exact bool
}

// CheckAntiMonotonicity evaluates the given measure on a subpattern and a
// superpattern against the same data graph and reports whether the
// anti-monotonicity requirement σ(sub) ≥ σ(super) holds. Callers must ensure
// that super is actually a superpattern of sub (the miner's extension
// operators guarantee this by construction).
func CheckAntiMonotonicity(g *graph.Graph, sub, super *pattern.Pattern, m Measure) (AntiMonotonicityReport, error) {
	reports, err := CheckAntiMonotonicityAll(g, sub, super, []Measure{m})
	if err != nil {
		return AntiMonotonicityReport{}, err
	}
	return reports[0], nil
}

// CheckAntiMonotonicityAll is CheckAntiMonotonicity for several measures at
// once; the two occurrence enumerations are shared across all measures, which
// matters when checking many measures per pattern pair.
func CheckAntiMonotonicityAll(g *graph.Graph, sub, super *pattern.Pattern, ms []Measure) ([]AntiMonotonicityReport, error) {
	subCtx, err := core.NewContext(g, sub, core.Options{})
	if err != nil {
		return nil, err
	}
	superCtx, err := core.NewContext(g, super, core.Options{})
	if err != nil {
		return nil, err
	}
	reports := make([]AntiMonotonicityReport, 0, len(ms))
	for _, m := range ms {
		subRes, err := m.Compute(subCtx)
		if err != nil {
			return nil, err
		}
		superRes, err := m.Compute(superCtx)
		if err != nil {
			return nil, err
		}
		reports = append(reports, AntiMonotonicityReport{
			Measure:    m.Name(),
			SubValue:   subRes.Value,
			SuperValue: superRes.Value,
			Holds:      subRes.Value+chainTolerance >= superRes.Value,
			Exact:      subRes.Exact && superRes.Exact,
		})
	}
	return reports, nil
}
