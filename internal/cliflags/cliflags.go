// Package cliflags is the one place the g* command-line tools declare their
// shared engine-facing flags. gsupport, gminer, gbench and gserved all speak
// the same knobs — enumeration parallelism, snapshot sharding, the
// planner/kernel A/B switches, the out-of-core store pair (-store,
// -residency) and -explain — and before this package each binary re-declared
// its own drifting copies. Register installs the requested flag families on
// a FlagSet and EngineOptions maps the parsed values onto the unified
// support.EngineOptions surface, so a new tool gets the full serving
// configuration for free.
package cliflags

import (
	"context"
	"flag"
	"fmt"
	"os"

	support "repro"
	"repro/internal/obs"
)

// Group selects one family of shared flags for Register.
type Group int

// The flag families a tool can request.
const (
	// Enum installs the enumeration-engine knobs: -parallel, -streaming and
	// the -no-planner/-no-kernels A/B switches.
	Enum Group = iota
	// Shards installs -shards, the CSR snapshot shard count.
	Shards
	// Store installs the out-of-core pair -store and -residency.
	Store
	// Explain installs -explain, the search-plan printing switch.
	Explain
	// Trace installs -trace, the per-request span-tree printing switch.
	Trace
)

// Flags holds the parsed values of the shared flags a tool registered.
// Accessors of unregistered families return zero values, so one code path
// serves every tool regardless of which families it asked for.
type Flags struct {
	parallel  *int
	shards    *int
	streaming *bool
	noPlanner *bool
	noKernels *bool
	store     *string
	residency *string
	explain   *bool
	trace     *bool
}

// Register installs the requested flag families on fs (every family when
// none are named) and returns the holder to read after fs.Parse.
func Register(fs *flag.FlagSet, groups ...Group) *Flags {
	if len(groups) == 0 {
		groups = []Group{Enum, Shards, Store, Explain, Trace}
	}
	f := &Flags{}
	for _, g := range groups {
		switch g {
		case Enum:
			f.parallel = fs.Int("parallel", 0, "enumeration worker count (0 = GOMAXPROCS, 1 = sequential)")
			f.streaming = fs.Bool("streaming", false, "stream occurrences into incremental aggregates instead of materializing them (MNI and the raw counts only)")
			f.noPlanner = fs.Bool("no-planner", false, "disable the data-aware search-order planner (A/B switch; results are identical)")
			f.noKernels = fs.Bool("no-kernels", false, "disable the intersection kernels (A/B switch; results are identical)")
		case Shards:
			f.shards = fs.Int("shards", 0, "CSR snapshot shard count (0 = auto: one shard up to 65536 vertices)")
		case Store:
			f.store = fs.String("store", "", "mmap an out-of-core shard store directory (written by ggen -store) as the data source")
			f.residency = fs.String("residency", "", "residency byte budget for -store paging: bytes, binary sizes (64MiB) or a percentage of the store (25%); empty = unlimited")
		case Explain:
			f.explain = fs.Bool("explain", false, "print the enumeration engine's search plan (order, per-depth candidate estimates, kernels)")
		case Trace:
			f.trace = fs.Bool("trace", false, "print the per-request span tree (phase timings) to stderr after each request")
		}
	}
	return f
}

// EngineOptions maps the parsed flags onto the unified engine options. Flag
// families the tool did not register contribute their zero values.
func (f *Flags) EngineOptions() support.EngineOptions {
	var o support.EngineOptions
	if f.parallel != nil {
		o.Parallelism = *f.parallel
	}
	if f.shards != nil {
		o.Shards = *f.shards
	}
	if f.streaming != nil {
		o.Streaming = *f.streaming
	}
	if f.noPlanner != nil {
		o.DisablePlanner = *f.noPlanner
	}
	if f.noKernels != nil {
		o.DisableKernels = *f.noKernels
	}
	if f.residency != nil {
		o.ResidencyBudget = *f.residency
	}
	return o
}

// Parallel returns the -parallel value (0 when unregistered).
func (f *Flags) Parallel() int {
	if f.parallel == nil {
		return 0
	}
	return *f.parallel
}

// Shards returns the -shards value (0 when unregistered).
func (f *Flags) Shards() int {
	if f.shards == nil {
		return 0
	}
	return *f.shards
}

// Streaming returns the -streaming value (false when unregistered).
func (f *Flags) Streaming() bool {
	if f.streaming == nil {
		return false
	}
	return *f.streaming
}

// StorePath returns the -store directory ("" when unset or unregistered).
func (f *Flags) StorePath() string {
	if f.store == nil {
		return ""
	}
	return *f.store
}

// Residency returns the -residency budget string ("" when unset or
// unregistered).
func (f *Flags) Residency() string {
	if f.residency == nil {
		return ""
	}
	return *f.residency
}

// Explain returns the -explain value (false when unregistered).
func (f *Flags) Explain() bool {
	if f.explain == nil {
		return false
	}
	return *f.explain
}

// Trace returns the -trace value (false when unregistered).
func (f *Flags) Trace() bool {
	if f.trace == nil {
		return false
	}
	return *f.trace
}

// Do runs one engine request, honoring -trace: with it set, an obs.Trace is
// attached to the request context and the finished span tree — per-phase
// timings of plan, enumerate, aggregate or mine — is printed to stderr. This
// is the one request path the g* CLIs share.
func (f *Flags) Do(eng *support.Engine, req *support.Request) (*support.Response, error) {
	if !f.Trace() {
		return eng.Do(req)
	}
	tr := obs.NewTrace("request")
	resp, err := eng.DoContext(obs.ContextWithTrace(context.Background(), tr), req)
	tr.Finish()
	fmt.Fprint(os.Stderr, tr.String())
	return resp, err
}

// Engine opens the engine for the tool's resolved data source: the mmapped
// -store directory when one was given, otherwise the graph returned by
// loadGraph. This is the one constructor path every g* tool shares.
func (f *Flags) Engine(loadGraph func() (*support.Graph, error)) (*support.Engine, error) {
	if dir := f.StorePath(); dir != "" {
		return support.OpenStoreEngine(dir, f.EngineOptions())
	}
	g, err := loadGraph()
	if err != nil {
		return nil, err
	}
	return support.NewEngine(g, f.EngineOptions())
}
