package support_test

import (
	"fmt"
	"log"
	"sort"

	support "repro"
)

// ExampleEvaluate reproduces the paper's Figure 2: the triangle pattern has
// six occurrences but a single instance, so the image-based MNI measure
// reports 3 while the overlap-aware measures report 1.
func ExampleEvaluate() {
	g := support.NewGraphBuilder("figure2").
		Vertices(1, 1, 2, 3, 4, 5, 6).
		Cycle(1, 2, 3).
		Edge(2, 4).Edge(3, 5).Edge(3, 6).
		MustBuild()
	p, err := support.NewPattern(support.NewGraphBuilder("triangle").
		Vertices(1, 0, 1, 2).Cycle(0, 1, 2).MustBuild())
	if err != nil {
		log.Fatal(err)
	}

	ev, err := support.Evaluate(g, p, support.MNI, support.MI, support.MVC, support.MIS)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{support.MNI, support.MI, support.MVC, support.MIS} {
		v, _ := ev.Value(name)
		fmt.Printf("%s=%g\n", name, v)
	}
	// Output:
	// MNI=3
	// MI=1
	// MVC=1
	// MIS=1
}

// ExampleVerifyBoundingChain checks the paper's bounding chain on the
// Figure 6 star-overlap example.
func ExampleVerifyBoundingChain() {
	fig := support.PaperFigures()[5] // figure6
	if err := support.VerifyBoundingChain(fig.Graph, fig.Pattern); err != nil {
		fmt.Println("violated:", err)
		return
	}
	fmt.Println("MIS = MIES <= nuMIES = nuMVC <= MVC <= MI <= MNI holds")
	// Output:
	// MIS = MIES <= nuMIES = nuMVC <= MVC <= MI <= MNI holds
}

// ExampleMineWithMeasure mines frequent patterns from the Figure 2 graph with
// the MI measure and prints how many frequent shapes exist per pattern size.
func ExampleMineWithMeasure() {
	fig := support.PaperFigures()[1] // figure2
	res, err := support.MineWithMeasure(fig.Graph, support.MI, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	bySize := map[int]int{}
	for _, fp := range res.Patterns {
		bySize[fp.Pattern.Size()]++
	}
	sizes := make([]int, 0, len(bySize))
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		fmt.Printf("patterns with %d nodes: %d\n", s, bySize[s])
	}
	// Output:
	// patterns with 2 nodes: 1
	// patterns with 3 nodes: 2
}

// ExampleNewDeltaContext keeps the MNI support of a pattern warm across
// graph mutations: Refresh applies exact deltas to the live domain tables
// instead of re-enumerating, and the answers match a cold restart.
func ExampleNewDeltaContext() {
	g := support.NewGraphBuilder("dynamic").
		Vertex(1, 1).Vertex(2, 2).Vertex(3, 1).Vertex(4, 2).
		Edge(1, 2).Edge(3, 2).
		MustBuild()
	p := support.SingleEdgePattern(1, 2)

	d, err := support.NewDeltaContext(g, p, support.ContextOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	mni, err := support.NewMeasure(support.MNI)
	if err != nil {
		log.Fatal(err)
	}

	r, _ := mni.Compute(d.Context())
	fmt.Printf("before: occurrences=%d MNI=%g\n", d.NumOccurrences(), r.Value)

	// The graph grows; only the mutated region is re-enumerated.
	g.MustAddVertex(5, 2)
	g.MustAddEdge(1, 5)
	g.MustAddEdge(3, 5)
	if err := d.Refresh(); err != nil {
		log.Fatal(err)
	}
	r, _ = mni.Compute(d.Context())
	fmt.Printf("after:  occurrences=%d MNI=%g\n", d.NumOccurrences(), r.Value)
	// Output:
	// before: occurrences=2 MNI=1
	// after:  occurrences=4 MNI=2
}

// ExampleMineIncremental keeps a whole mining session warm: after mutations,
// Refresh re-answers the frequent-pattern question from delta-maintained
// support state — including boundary patterns that newly crossed the
// threshold — without a cold re-mine.
func ExampleMineIncremental() {
	g := support.NewGraphBuilder("growing").
		Vertex(1, 1).Vertex(2, 1).Vertex(3, 2).
		Edge(1, 2).Edge(1, 3).
		MustBuild()

	inc, err := support.MineIncremental(g, support.MinerConfig{MinSupport: 2, MaxPatternSize: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer inc.Close()
	fmt.Printf("initial: %d frequent of %d tracked candidates\n",
		inc.Result().Stats.Frequent, inc.TrackedPatterns())

	// A new edge pushes the (1)-(2) pattern over the threshold; Refresh
	// expands from the tracked boundary instead of re-mining.
	g.MustAddVertex(4, 2)
	g.MustAddEdge(2, 4)
	res, err := inc.Refresh()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after:   %d frequent of %d tracked candidates\n",
		res.Stats.Frequent, inc.TrackedPatterns())
	// Output:
	// initial: 1 frequent of 2 tracked candidates
	// after:   2 frequent of 2 tracked candidates
}

// ExampleSingleEdgePattern shows the smallest possible query: a labeled edge.
func ExampleSingleEdgePattern() {
	fig := support.PaperFigures()[5] // figure6
	p := support.SingleEdgePattern(1, 2)
	ev, err := support.Evaluate(fig.Graph, p, support.Occurrences, support.MNI, support.MVC)
	if err != nil {
		log.Fatal(err)
	}
	occ, _ := ev.Value(support.Occurrences)
	mni, _ := ev.Value(support.MNI)
	mvc, _ := ev.Value(support.MVC)
	fmt.Printf("occurrences=%g MNI=%g MVC=%g\n", occ, mni, mvc)
	// Output:
	// occurrences=7 MNI=4 MVC=2
}
