package support_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	support "repro"
)

// TestFacadeQuickstart exercises the documented happy path of the public API
// end to end: build graph, build pattern, evaluate, verify, format.
func TestFacadeQuickstart(t *testing.T) {
	g, err := support.NewGraphBuilder("demo").
		Vertices(1, 1, 2, 3, 4, 5, 6).
		Cycle(1, 2, 3).
		Edge(2, 4).Edge(3, 5).Edge(3, 6).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	pg, err := support.NewGraphBuilder("triangle").
		Vertices(1, 0, 1, 2).
		Cycle(0, 1, 2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := support.NewPattern(pg)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := support.Evaluate(g, p)
	if err != nil {
		t.Fatal(err)
	}
	mni, err := ev.Value(support.MNI)
	if err != nil || mni != 3 {
		t.Errorf("MNI = %v (%v), want 3", mni, err)
	}
	mi, err := ev.Value(support.MI)
	if err != nil || mi != 1 {
		t.Errorf("MI = %v (%v), want 1", mi, err)
	}
	if err := support.VerifyBoundingChain(g, p); err != nil {
		t.Errorf("VerifyBoundingChain: %v", err)
	}
	report := support.FormatEvaluation(ev)
	for _, want := range []string{"MNI", "MI", "MVC", "MIS", "nuMVC"} {
		if !strings.Contains(report, want) {
			t.Errorf("formatted evaluation missing %q:\n%s", want, report)
		}
	}
}

func TestFacadeMeasureSelection(t *testing.T) {
	fig := support.PaperFigures()[1] // figure2
	ev, err := support.Evaluate(fig.Graph, fig.Pattern, support.MNI, support.MVCApprox)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Results) != 2 {
		t.Errorf("expected exactly the requested measures, got %v", ev.Names())
	}
	if _, err := support.Evaluate(fig.Graph, fig.Pattern, "not-a-measure"); err == nil {
		t.Error("unknown measure name should error")
	}
	names := support.MeasureNames()
	if len(names) < 14 {
		t.Errorf("MeasureNames = %v", names)
	}
	m, err := support.NewMeasure(support.MIES)
	if err != nil || m.Name() != support.MIES {
		t.Errorf("NewMeasure: %v %v", m, err)
	}
}

func TestFacadeContextAndCounts(t *testing.T) {
	fig := support.PaperFigures()[1] // figure2
	ctx, err := support.NewContext(fig.Graph, fig.Pattern, support.ContextOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.NumOccurrences() != 6 || ctx.NumInstances() != 1 {
		t.Errorf("counts = %d/%d", ctx.NumOccurrences(), ctx.NumInstances())
	}
	capped, err := support.NewContext(fig.Graph, fig.Pattern, support.ContextOptions{MaxOccurrences: 3})
	if err != nil {
		t.Fatal(err)
	}
	if capped.NumOccurrences() != 3 {
		t.Errorf("MaxOccurrences not honored: %d", capped.NumOccurrences())
	}
}

func TestFacadeGeneratorsAndIO(t *testing.T) {
	g := support.BarabasiAlbert(60, 2, 3, 7)
	if g.NumVertices() != 60 {
		t.Fatalf("BA vertices = %d", g.NumVertices())
	}
	er := support.ErdosRenyi(40, 0.1, 2, 7)
	geo := support.RandomGeometric(40, 0.2, 2, 7)
	if er.NumVertices() != 40 || geo.NumVertices() != 40 {
		t.Error("generator sizes wrong")
	}

	var buf bytes.Buffer
	if err := support.WriteLG(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := support.ReadLG(&buf, "back")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Error("LG round trip changed the graph")
	}

	dir := t.TempDir()
	path := dir + "/g.lg"
	if err := support.SaveLGFile(path, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := support.LoadLGFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Equal(g) {
		t.Error("file round trip changed the graph")
	}
}

func TestFacadeMining(t *testing.T) {
	g := support.BarabasiAlbert(60, 2, 2, 11)
	res, err := support.MineWithMeasure(g, support.MNI, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("expected frequent patterns")
	}
	for _, fp := range res.Patterns {
		if fp.Support < 3 {
			t.Errorf("pattern below threshold: %+v", fp)
		}
		// Cross-check against a direct evaluation through the facade.
		ev, err := support.Evaluate(g, fp.Pattern, support.MNI)
		if err != nil {
			t.Fatal(err)
		}
		direct, _ := ev.Value(support.MNI)
		if math.Abs(direct-fp.Support) > 1e-9 {
			t.Errorf("mined support %v != direct %v", fp.Support, direct)
		}
	}
	if _, err := support.MineWithMeasure(g, "bogus", 3, 3); err == nil {
		t.Error("unknown measure should error")
	}
	if _, err := support.Mine(g, support.MinerConfig{}); err == nil {
		t.Error("zero threshold should error")
	}
}

func TestFacadePaperFigures(t *testing.T) {
	figs := support.PaperFigures()
	if len(figs) != 9 {
		t.Fatalf("expected 9 figures, got %d", len(figs))
	}
	for _, f := range figs {
		if f.Graph == nil || f.Pattern == nil || f.Name == "" {
			t.Errorf("incomplete figure fixture %+v", f)
		}
	}
	p := support.SingleEdgePattern(1, 2)
	if p.Size() != 2 {
		t.Errorf("SingleEdgePattern size = %d", p.Size())
	}
	if _, err := support.NewPattern(support.NewGraph("empty")); err == nil {
		t.Error("empty pattern should be rejected")
	}
}
