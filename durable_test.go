package support_test

import (
	"testing"

	support "repro"
)

// seedDurableRing applies the shared seed batch of the durable-engine tests:
// a 12-vertex labeled ring, enough structure for a minsup-2 mine to find
// multi-edge patterns.
func seedDurableRing(t *testing.T, eng *support.Engine) {
	t.Helper()
	if _, err := eng.Update(func(g *support.Graph) error {
		for i := 0; i < 12; i++ {
			if err := g.AddVertex(support.VertexID(i), support.Label(i%3)); err != nil {
				return err
			}
		}
		for i := 0; i < 12; i++ {
			if err := g.AddEdge(support.VertexID(i), support.VertexID((i+1)%12)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// mutateDurableRing applies the shared second batch: chord inserts plus an
// edge removal and a cascading vertex removal, exercising every mutation
// kind the WAL records.
func mutateDurableRing(t *testing.T, eng *support.Engine) {
	t.Helper()
	if _, err := eng.Update(func(g *support.Graph) error {
		for i := 0; i < 12; i += 3 {
			if err := g.AddEdge(support.VertexID(i), support.VertexID((i+5)%12)); err != nil {
				return err
			}
		}
		if err := g.RemoveEdge(0, 1); err != nil {
			return err
		}
		return g.RemoveVertex(7)
	}); err != nil {
		t.Fatal(err)
	}
}

// mineDurable runs one deterministic mine on the engine.
func mineDurable(t *testing.T, eng *support.Engine) *support.MinerResult {
	t.Helper()
	spec := support.MineSpec{MinSupport: 2, MaxPatternSize: 3}
	resp, err := eng.Do(&support.Request{Mine: &spec})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Mining
}

// TestDurableEngineLifecycle drives a durable engine through the full
// mutation lifecycle — seed, mutate with removals, commit on cadence, leave
// a WAL tail, Persist, Close — then reopens the directory and proves the
// recovered engine serves the same graph and the same mining answers.
func TestDurableEngineLifecycle(t *testing.T) {
	dir := t.TempDir()
	eng, err := support.OpenDurableEngine(dir, 2, support.EngineOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if epoch, pending, ok := eng.Durable(); !ok || epoch != 0 || pending != 0 {
		t.Fatalf("fresh Durable() = (%d, %d, %v), want (0, 0, true)", epoch, pending, ok)
	}

	// First update: logged but below the commit cadence of two.
	seedDurableRing(t, eng)
	if epoch, pending, ok := eng.Durable(); !ok || epoch != 0 || pending == 0 {
		t.Fatalf("after seed Durable() = (%d, %d, %v), want a pending batch at epoch 0", epoch, pending, ok)
	}

	// Second update hits the cadence: the store folds to epoch 1 and the
	// WAL truncates.
	mutateDurableRing(t, eng)
	if epoch, pending, ok := eng.Durable(); !ok || epoch != 1 || pending != 0 {
		t.Fatalf("after cadence commit Durable() = (%d, %d, %v), want (1, 0, true)", epoch, pending, ok)
	}

	// Third update leaves a WAL tail; Persist folds it explicitly.
	if _, err := eng.Update(func(g *support.Graph) error {
		return g.AddEdge(1, 6)
	}); err != nil {
		t.Fatal(err)
	}
	if epoch, pending, ok := eng.Durable(); !ok || epoch != 1 || pending == 0 {
		t.Fatalf("pre-Persist Durable() = (%d, %d, %v), want a pending batch at epoch 1", epoch, pending, ok)
	}
	stats, err := eng.Persist()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 2 || stats.SegmentsWritten == 0 {
		t.Fatalf("Persist stats = %+v, want epoch 2 with rewritten segments", stats)
	}
	if epoch, pending, ok := eng.Durable(); !ok || epoch != 2 || pending != 0 {
		t.Fatalf("post-Persist Durable() = (%d, %d, %v), want (2, 0, true)", epoch, pending, ok)
	}

	want := mineDurable(t, eng)
	snapBefore, _ := eng.Current()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen without a shard hint: the store's own geometry wins.
	eng2, err := support.OpenDurableEngine(dir, 2, support.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	snapAfter, _ := eng2.Current()
	if snapAfter.NumVertices() != snapBefore.NumVertices() || snapAfter.NumEdges() != snapBefore.NumEdges() {
		t.Fatalf("reopened graph is |V|=%d |E|=%d, want |V|=%d |E|=%d",
			snapAfter.NumVertices(), snapAfter.NumEdges(), snapBefore.NumVertices(), snapBefore.NumEdges())
	}
	if _, pending, ok := eng2.Durable(); !ok || pending != 0 {
		t.Fatalf("reopened Durable() pending = %d, want 0 after a clean Close", pending)
	}
	assertSameMining(t, mineDurable(t, eng2), want)
}

// TestDurableEngineWALRecovery abandons a never-committed engine without
// Close — the process-crash shape — and proves a reopen rebuilds the whole
// acknowledged history from the WAL alone: no manifest was ever written,
// yet the recovered engine mines identically.
func TestDurableEngineWALRecovery(t *testing.T) {
	dir := t.TempDir()
	eng, err := support.OpenDurableEngine(dir, 0, support.EngineOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	seedDurableRing(t, eng)
	mutateDurableRing(t, eng)
	if epoch, pending, ok := eng.Durable(); !ok || epoch != 0 || pending == 0 {
		t.Fatalf("Durable() = (%d, %d, %v), want WAL-only batches at epoch 0", epoch, pending, ok)
	}
	want := mineDurable(t, eng)
	snapBefore, _ := eng.Current()
	// Abandon eng here: no Close, no commit — only the fsynced WAL survives.

	eng2, err := support.OpenDurableEngine(dir, 0, support.EngineOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if epoch, pending, ok := eng2.Durable(); !ok || epoch != 0 || pending == 0 {
		t.Fatalf("recovered Durable() = (%d, %d, %v), want replayed batches at epoch 0", epoch, pending, ok)
	}
	snapAfter, _ := eng2.Current()
	if snapAfter.NumVertices() != snapBefore.NumVertices() || snapAfter.NumEdges() != snapBefore.NumEdges() {
		t.Fatalf("recovered graph is |V|=%d |E|=%d, want |V|=%d |E|=%d",
			snapAfter.NumVertices(), snapAfter.NumEdges(), snapBefore.NumVertices(), snapBefore.NumEdges())
	}
	assertSameMining(t, mineDurable(t, eng2), want)
}
