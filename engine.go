package support

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/measures"
	"repro/internal/miner"
	"repro/internal/obs"
	"repro/internal/store"
)

// EngineOptions is the unified knob surface of the library: it collapses the
// enumeration options that used to be scattered across ContextOptions,
// MinerConfig's Enum* fields and StoreOptions into one struct that an Engine
// is constructed with and that individual requests may override. Every layer
// — the facade wrappers, the CLIs and the gserved server — speaks this one
// options type.
//
// All fields are A/B-safe: results are identical for every setting (the cap
// excepted, which truncates deterministically).
type EngineOptions struct {
	// MaxOccurrences caps occurrence enumeration per evaluated pattern; zero
	// means unlimited. A positive cap forces sequential enumeration so the
	// kept prefix is deterministic.
	MaxOccurrences int
	// Parallelism is the worker count of the streaming enumeration engine:
	// 0 picks GOMAXPROCS (with a sequential fallback on tiny inputs), 1
	// forces the deterministic sequential path, higher values are used as
	// given.
	Parallelism int
	// Shards is the CSR shard count snapshots are frozen with: 0 keeps the
	// graph's automatic sharding (one shard up to 65536 vertices). It is
	// ignored by snapshot- and store-backed engines, whose sources carry
	// their own shard geometry.
	Shards int
	// DisablePlanner and DisableKernels are the A/B switches of the
	// enumeration engine's data-aware search-order planner and intersection
	// kernels. Both default to off — the optimized paths are the production
	// configuration.
	DisablePlanner bool
	// DisableKernels is documented on DisablePlanner.
	DisableKernels bool
	// Streaming skips materializing occurrence lists and hypergraphs;
	// occurrences are folded into incremental aggregates as they stream out
	// of the enumeration workers. Only MNI and the raw occurrence/instance
	// counts can be computed on streaming state.
	Streaming bool
	// ResidencyBudget caps the resident bytes of a store-backed engine's
	// mmapped shards, in ParseResidencyBudget syntax (bytes, "64MiB", "25%";
	// empty = unlimited). It is an engine-level property consumed by
	// OpenStoreEngine and cannot be overridden per request; graph- and
	// snapshot-backed engines ignore it.
	ResidencyBudget string
}

// contextOptions projects the enumeration-facing fields onto core.Options.
func (o EngineOptions) contextOptions() core.Options {
	return core.Options{
		MaxOccurrences: o.MaxOccurrences,
		Parallelism:    o.Parallelism,
		Shards:         o.Shards,
		DisablePlanner: o.DisablePlanner,
		DisableKernels: o.DisableKernels,
		Streaming:      o.Streaming,
	}
}

// MineSpec is the mining half of a Request: the knobs that shape the
// frequent-pattern search itself. The enumeration knobs live in
// EngineOptions; an Engine combines both into the miner configuration.
type MineSpec struct {
	// MinSupport is the frequency threshold: a pattern is frequent when its
	// support is >= MinSupport.
	MinSupport float64
	// MaxPatternSize bounds the number of nodes of explored patterns. Zero
	// means the miner's DefaultMaxPatternSize.
	MaxPatternSize int
	// MaxPatterns stops the search after this many frequent patterns have
	// been reported; zero means unlimited.
	MaxPatterns int
	// Measure is the support measure driving pruning; nil means MNI.
	Measure Measure
	// Workers is the candidate-level evaluation parallelism per search
	// level; values below 2 evaluate sequentially.
	Workers int
	// MaterializeContexts opts out of the automatic streaming contexts for
	// streaming-capable measures (see MinerConfig.MaterializeContexts).
	MaterializeContexts bool
}

// minerConfig combines the mining spec with engine-level enumeration options
// into the internal miner configuration.
func (ms *MineSpec) minerConfig(o EngineOptions) miner.Config {
	return miner.Config{
		MinSupport:          ms.MinSupport,
		MaxPatternSize:      ms.MaxPatternSize,
		MaxPatterns:         ms.MaxPatterns,
		Measure:             ms.Measure,
		MaxOccurrences:      o.MaxOccurrences,
		Parallelism:         ms.Workers,
		EnumParallelism:     o.Parallelism,
		EnumShards:          o.Shards,
		EnumDisablePlanner:  o.DisablePlanner,
		EnumDisableKernels:  o.DisableKernels,
		Streaming:           o.Streaming,
		MaterializeContexts: ms.MaterializeContexts,
	}
}

// Request is the one request surface of the Engine: a support-evaluation
// request carries a Pattern (and optionally measure names), a mining request
// carries a MineSpec, and either kind may additionally ask for a plan
// explanation. The facade wrappers (Evaluate, Mine, ...), the CLIs and the
// gserved server all reduce to this type.
type Request struct {
	// Pattern is the query pattern of an evaluation or explanation request;
	// nil for mining requests.
	Pattern *Pattern
	// Measures names the measures to evaluate; empty means the default set
	// (shrunk to the streaming-capable measures on streaming state).
	Measures []string
	// Mine, when non-nil, makes this a mining request. It is mutually
	// exclusive with Pattern/Measures.
	Mine *MineSpec
	// Explain additionally compiles (without running it) the search plan of
	// Pattern over the engine's current snapshot into Response.Plan.
	Explain bool
	// Options, when non-nil, overrides the engine's default EngineOptions
	// for this request (ResidencyBudget excepted: residency is fixed when a
	// store is opened).
	Options *EngineOptions
}

// Response is the outcome of one Engine request.
type Response struct {
	// Epoch identifies the immutable snapshot the request was answered on;
	// it starts at 1 and increments on every Engine.Update handoff.
	Epoch uint64
	// Evaluation holds the measure results of an evaluation request; nil
	// for mining requests.
	Evaluation *Evaluation
	// Mining holds the result of a mining request; nil otherwise.
	Mining *MinerResult
	// Plan is the compiled search-plan explanation when Request.Explain was
	// set (and the request had a Pattern); nil otherwise.
	Plan *PlanExplanation
}

// engineState is one epoch of an Engine: an immutable snapshot plus its
// sequence number. The Engine swaps whole states atomically, so in-flight
// requests keep reading the snapshot they loaded while new requests see the
// refrozen one — MVCC on top of the snapshot layer's immutability.
type engineState struct {
	snap  *Snapshot
	epoch uint64
}

// Engine is the long-lived serving core of the library: it opens a data
// source once — a mutable Graph, an explicit frozen Snapshot, or an
// out-of-core Store — and answers evaluation, mining and explanation
// Requests from any number of concurrent goroutines against an immutable
// pinned snapshot.
//
// Concurrency model (the snapshot epoch handoff): Do never locks — it reads
// the current (snapshot, epoch) pair with one atomic load and runs entirely
// on that immutable snapshot. Update serializes writers, mutates the graph,
// refreezes, and atomically publishes the next epoch; requests in flight
// across the handoff simply finish on the snapshot they pinned. Sessions
// (OpenSession) read the mutable graph and therefore exclude writers for the
// duration of their refresh, but never each other.
//
// The free functions Evaluate, Mine, MineSnapshot, EvaluateSnapshot, ... are
// thin wrappers that build a throwaway Engine per call; long-lived callers —
// above all the gserved server — construct one Engine and share it.
type Engine struct {
	opts EngineOptions

	// g is the mutable source; nil for snapshot- and store-backed engines.
	g *graph.Graph
	// st is the open store of a store-backed engine; owned and closed by
	// Close. Nil otherwise.
	st *store.Store
	// db is the durable backing of an engine opened with OpenDurableEngine:
	// Update appends acknowledged mutations to its write-ahead log before
	// publishing, and Persist (plus the commitEvery cadence and Close) folds
	// them into its segment store. Nil for every other engine kind.
	db *store.DB
	// freezeOpts is the geometry Update refreezes with: opts.Shards for
	// plain graph engines, the durable store's own geometry for durable ones
	// (so refreezes share clean shards with the last committed snapshot).
	freezeOpts graph.FreezeOptions
	// commitEvery and sinceCommit drive the durable commit cadence; both are
	// guarded by mu.
	commitEvery int
	sinceCommit int

	// mu orders writers (Update: exclusive) against graph-reading
	// operations (sessions, re-shard freezes: shared). Snapshot-pinned
	// requests take no lock at all.
	mu    sync.RWMutex
	state atomic.Pointer[engineState]
}

// NewEngine returns an engine over a mutable data graph. The graph is frozen
// once with opts.Shards; later mutations must go through Update, which
// refreezes and advances the epoch. Mutating g directly while the engine is
// serving is a data race.
func NewEngine(g *Graph, opts EngineOptions) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("support: NewEngine needs a non-nil graph (use NewSnapshotEngine or OpenStoreEngine for immutable sources)")
	}
	e := &Engine{opts: opts, g: g, freezeOpts: graph.FreezeOptions{Shards: opts.Shards}}
	snap := g.FreezeSharded(e.freezeOpts)
	e.state.Store(&engineState{snap: snap, epoch: 1})
	mEpoch.Set(1)
	return e, nil
}

// NewSnapshotEngine returns an engine over an explicit frozen snapshot —
// typically one obtained from an already-open Store. The engine is
// immutable: Update and OpenSession fail, and opts.Shards is ignored in
// favor of the snapshot's own geometry.
func NewSnapshotEngine(snap *Snapshot, opts EngineOptions) (*Engine, error) {
	if snap == nil {
		return nil, fmt.Errorf("support: NewSnapshotEngine needs a non-nil snapshot")
	}
	e := &Engine{opts: opts}
	e.state.Store(&engineState{snap: snap, epoch: 1})
	mEpoch.Set(1)
	return e, nil
}

// OpenStoreEngine opens the out-of-core shard store at dir under
// opts.ResidencyBudget and serves its mmap-backed snapshot. The engine owns
// the store: Close unmaps it. Like NewSnapshotEngine the result is
// immutable, and opts.Shards is ignored.
func OpenStoreEngine(dir string, opts EngineOptions) (*Engine, error) {
	st, err := store.OpenWithBudget(dir, opts.ResidencyBudget)
	if err != nil {
		return nil, err
	}
	e := &Engine{opts: opts, st: st}
	e.state.Store(&engineState{snap: st.Snapshot(), epoch: 1})
	mEpoch.Set(1)
	return e, nil
}

// Options returns the engine's default options.
func (e *Engine) Options() EngineOptions { return e.opts }

// Mutable reports whether the engine serves a mutable graph (Update and
// OpenSession work) rather than an immutable snapshot or store.
func (e *Engine) Mutable() bool { return e.g != nil }

// Current returns the engine's pinned snapshot and its epoch. The snapshot
// is immutable and remains valid (and byte-stable) after any number of later
// Updates — retain it to re-answer questions as of that epoch.
func (e *Engine) Current() (*Snapshot, uint64) {
	st := e.state.Load()
	return st.snap, st.epoch
}

// Epoch returns the current epoch number.
func (e *Engine) Epoch() uint64 { return e.state.Load().epoch }

// Residency returns the paging statistics of a store-backed engine; ok is
// false for graph- and snapshot-backed engines.
func (e *Engine) Residency() (stats ResidencyStats, ok bool) {
	if e.st == nil {
		return ResidencyStats{}, false
	}
	return e.st.Residency(), true
}

// Close releases resources owned by the engine: the mmapped store of a
// store-backed engine, or the durable database of a durable engine — after
// one final commit, so a clean shutdown leaves an empty write-ahead log and
// a segment store holding the last epoch exactly. Sessions must be closed
// first; requests must not be in flight. Close is idempotent.
func (e *Engine) Close() error {
	if e.db != nil {
		db := e.db
		e.db = nil
		_, cerr := db.Commit()
		if err := db.Close(); cerr == nil {
			cerr = err
		}
		return cerr
	}
	if e.st == nil {
		return nil
	}
	st := e.st
	e.st = nil
	return st.Close()
}

// Update applies a mutation batch to a graph-backed engine and performs the
// snapshot epoch handoff: mutate runs under the writer lock (excluding
// session refreshes but not snapshot-pinned requests, which keep reading the
// old epoch), the graph is refrozen, and the new (snapshot, epoch) pair is
// published atomically. It returns the new epoch.
//
// The refreeze happens even when mutate returns an error, so any mutations
// applied before the failure become visible at the returned epoch instead of
// leaking silently into a later one. A nil mutate is a pure refreeze (epoch
// bump with unchanged data).
//
// On a durable engine the applied mutations are appended to the write-ahead
// log (one fsynced batch) before the new epoch is published, so every epoch
// a caller has seen can be reconstructed after a crash; a WAL failure still
// publishes — the mutations did happen — but is reported so the caller
// knows the batch is not yet crash-durable. Every commitEvery successful
// updates the log is folded into the segment store in the background of the
// writer lock (see OpenDurableEngine).
func (e *Engine) Update(mutate func(g *Graph) error) (uint64, error) {
	if e.g == nil {
		return 0, fmt.Errorf("support: engine source is immutable (snapshot- or store-backed); Update needs a graph-backed engine")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var mutErr error
	if mutate != nil {
		mutErr = mutate(e.g)
	}
	var logErr error
	if e.db != nil {
		logErr = e.db.Log()
	}
	snap := e.g.FreezeSharded(e.freezeOpts) //gvet:ignore lockscope deliberate epoch handoff: readers pin snapshots with an atomic load and never take e.mu, so the refreeze only serializes writers
	next := &engineState{snap: snap, epoch: e.state.Load().epoch + 1}
	e.state.Store(next)
	mUpdates.Inc()
	mEpoch.Set(int64(next.epoch))
	if e.db != nil && e.commitEvery > 0 {
		e.sinceCommit++
		if e.sinceCommit >= e.commitEvery {
			if _, err := e.db.Commit(); err != nil {
				if logErr == nil {
					logErr = err
				}
			} else {
				e.sinceCommit = 0
			}
		}
	}
	if mutErr != nil {
		return next.epoch, mutErr
	}
	return next.epoch, logErr
}

// Do answers one Request on the engine's current snapshot. It is safe for
// any number of concurrent callers and never blocks on writers: the
// (snapshot, epoch) pair is pinned with one atomic load and the request runs
// to completion on it, even if an Update hands off a new epoch mid-flight.
// It is DoContext with a background context: no trace is attached.
func (e *Engine) Do(req *Request) (*Response, error) {
	return e.DoContext(context.Background(), req)
}

// DoContext is Do with a context. The context carries observability only —
// when an obs.Trace is attached (obs.ContextWithTrace), the request's phases
// are recorded as child spans of the trace root (plan, enumerate, aggregate,
// mine) and the root is annotated with the answering epoch. Cancellation is
// not consulted: requests run on an immutable snapshot and always complete.
// The Response is a pure function of (request, pinned snapshot); nothing
// timing-dependent ever enters it.
func (e *Engine) DoContext(ctx context.Context, req *Request) (*Response, error) {
	if req == nil {
		return nil, fmt.Errorf("support: nil request")
	}
	mRequests.Inc()
	root := obs.FromContext(ctx).Root()
	opts := e.opts
	if req.Options != nil {
		opts = *req.Options
		opts.ResidencyBudget = e.opts.ResidencyBudget
	}
	st := e.state.Load()
	snap, epoch := st.snap, st.epoch
	if e.g != nil && opts.Shards != e.opts.Shards {
		// A request asking for a different shard geometry re-freezes the
		// graph (served from the graph's snapshot cache when warm). The
		// read lock excludes writers so the freeze observes a consistent
		// epoch; the returned snapshot is immutable, so the lock is
		// released before any enumeration work.
		e.mu.RLock()
		snap = e.g.FreezeSharded(graph.FreezeOptions{Shards: opts.Shards})
		epoch = e.state.Load().epoch
		e.mu.RUnlock()
	}
	root.SetAttrInt("epoch", int64(epoch))

	if req.Mine != nil && (req.Pattern != nil || len(req.Measures) > 0) {
		return nil, fmt.Errorf("support: a request either mines (Mine) or evaluates a pattern (Pattern/Measures), not both")
	}
	resp := &Response{Epoch: epoch}
	if req.Explain {
		if req.Pattern == nil {
			return nil, fmt.Errorf("support: Explain requires a Pattern")
		}
		sp := root.Start("plan")
		t := obs.StartTimer()
		resp.Plan = isomorph.Explain(snap, req.Pattern, isomorph.Options{
			Parallelism:    opts.Parallelism,
			DisablePlanner: opts.DisablePlanner,
			DisableKernels: opts.DisableKernels,
		})
		t.ObserveInto(mPlanSeconds)
		sp.End()
		mExplains.Inc()
	}

	switch {
	case req.Mine != nil:
		sp := root.Start("mine")
		t := obs.StartTimer()
		m, err := miner.NewSnapshot(snap, req.Mine.minerConfig(opts))
		if err != nil {
			sp.End()
			return nil, err
		}
		res, err := m.Mine()
		t.ObserveInto(mMineSeconds)
		sp.End()
		if err != nil {
			return nil, err
		}
		mMines.Inc()
		resp.Mining = res
		return resp, nil

	case req.Pattern != nil:
		sp := root.Start("enumerate")
		t := obs.StartTimer()
		copts := opts.contextOptions()
		copts.Snapshot = snap
		ectx, err := core.NewContext(e.g, req.Pattern, copts)
		t.ObserveInto(mEnumerateSeconds)
		sp.End()
		if err != nil {
			return nil, err
		}
		sp = root.Start("aggregate")
		t = obs.StartTimer()
		ev, err := evaluateNamed(ectx, req.Measures)
		t.ObserveInto(mAggregateSeconds)
		sp.End()
		if err != nil {
			return nil, err
		}
		mEvaluations.Inc()
		resp.Evaluation = ev
		return resp, nil

	default:
		return nil, fmt.Errorf("support: request needs a Pattern or a Mine spec")
	}
}

// evaluateNamed computes the named measures (default set when none are
// given) on a prepared context.
func evaluateNamed(ctx *Context, names []string) (*Evaluation, error) {
	if len(names) == 0 {
		return measures.Evaluate(ctx)
	}
	reg := measures.NewRegistry()
	ms := make([]Measure, 0, len(names))
	for _, n := range names {
		m, err := reg.New(n)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	return measures.Evaluate(ctx, ms...)
}

// OpenSession starts a warm mining session on a graph-backed engine: the
// initial result equals a cold mine, and Refresh re-answers the
// frequent-pattern question from live delta-maintained support state after
// Updates. The session reads the mutable graph, so its operations hold the
// engine's shared lock — concurrent sessions proceed in parallel, writers
// wait. Close the session when the client goes away; the gserved session
// manager evicts idle ones.
func (e *Engine) OpenSession(spec MineSpec) (*Session, error) {
	if e.g == nil {
		return nil, fmt.Errorf("support: engine source is immutable (snapshot- or store-backed); sessions need a graph-backed engine")
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	inc, err := miner.NewIncremental(e.g, spec.minerConfig(e.opts))
	if err != nil {
		return nil, err
	}
	mSessionOpens.Inc()
	return &Session{e: e, inc: inc}, nil
}

// Session is one warm mining session opened on an Engine: a thin,
// engine-locked wrapper around an IncrementalMiner. A Session serves one
// client at a time (its methods must not be called concurrently with each
// other); different sessions are independent.
type Session struct {
	e   *Engine
	inc *miner.Incremental
}

// Refresh synchronizes the session with every Update since the previous
// refresh and returns the updated mining result — equal to a cold mine of
// the current epoch — together with the epoch it corresponds to.
func (s *Session) Refresh() (*MinerResult, uint64, error) {
	s.e.mu.RLock()
	defer s.e.mu.RUnlock()
	t := obs.StartTimer()
	res, err := s.inc.Refresh()
	t.ObserveInto(mSessionRefreshSeconds)
	if err != nil {
		return nil, 0, err
	}
	return res, s.e.state.Load().epoch, nil
}

// Result returns the session's most recent mining result without
// refreshing.
func (s *Session) Result() *MinerResult { return s.inc.Result() }

// TrackedPatterns returns the number of candidate patterns the session keeps
// warm (frequent patterns plus the pruned boundary).
func (s *Session) TrackedPatterns() int { return s.inc.TrackedPatterns() }

// Close releases the session's live delta contexts and mutation-feed
// subscriptions. It is idempotent; the last Result stays readable.
func (s *Session) Close() { s.inc.Close() }
