package support_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	support "repro"
)

// TestEngineWrapperParity proves the deprecated free-function facade is a
// pure re-skin of the Engine: Evaluate/EvaluateWithOptions/Mine/MineSnapshot
// answers are identical — field for field, byte for byte once encoded — to
// building an Engine and issuing the equivalent Request directly.
func TestEngineWrapperParity(t *testing.T) {
	g := support.BarabasiAlbert(80, 2, 2, 13)
	p := support.SingleEdgePattern(1, 2)

	asJSON := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(b)
	}

	t.Run("evaluate", func(t *testing.T) {
		cases := []struct {
			opts     support.ContextOptions
			measures []string
		}{
			{support.ContextOptions{}, []string{"MNI", "MI"}},
			{support.ContextOptions{Parallelism: 1}, []string{"MNI", "MI"}},
			{support.ContextOptions{Parallelism: 2, Shards: 4}, []string{"MNI", "MI"}},
			{support.ContextOptions{Streaming: true}, []string{"MNI"}},
			{support.ContextOptions{MaxOccurrences: 50}, []string{"MNI", "MI"}},
		}
		for _, tc := range cases {
			opts := tc.opts
			wrapped, err := support.EvaluateWithOptions(g, p, opts, tc.measures...)
			if err != nil {
				t.Fatalf("EvaluateWithOptions(%+v): %v", opts, err)
			}
			eng, err := support.NewEngine(g, support.EngineOptions{
				MaxOccurrences: opts.MaxOccurrences,
				Parallelism:    opts.Parallelism,
				Shards:         opts.Shards,
				Streaming:      opts.Streaming,
			})
			if err != nil {
				t.Fatal(err)
			}
			resp, err := eng.Do(&support.Request{Pattern: p, Measures: tc.measures})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := asJSON(resp.Evaluation.Results), asJSON(wrapped.Results); got != want {
				t.Fatalf("opts %+v: engine answer differs from wrapper:\n got %s\nwant %s", opts, got, want)
			}
		}
	})

	t.Run("mine", func(t *testing.T) {
		cfg := support.MinerConfig{MinSupport: 5, MaxPatternSize: 3}
		wrapped, err := support.Mine(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := support.NewEngine(g, support.EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := eng.Do(&support.Request{Mine: &support.MineSpec{MinSupport: 5, MaxPatternSize: 3}})
		if err != nil {
			t.Fatal(err)
		}
		assertSameMining(t, resp.Mining, wrapped)
	})

	t.Run("mine-snapshot", func(t *testing.T) {
		snap := g.FreezeSharded(support.FreezeOptions{Shards: 4})
		cfg := support.MinerConfig{MinSupport: 5, MaxPatternSize: 3}
		wrapped, err := support.MineSnapshot(snap, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := support.NewSnapshotEngine(snap, support.EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := eng.Do(&support.Request{Mine: &support.MineSpec{MinSupport: 5, MaxPatternSize: 3}})
		if err != nil {
			t.Fatal(err)
		}
		assertSameMining(t, resp.Mining, wrapped)
	})
}

// assertSameMining compares two mining results modulo wall-clock stats.
func assertSameMining(t *testing.T, got, want *support.MinerResult) {
	t.Helper()
	if len(got.Patterns) != len(want.Patterns) {
		t.Fatalf("pattern count %d != %d", len(got.Patterns), len(want.Patterns))
	}
	for i := range got.Patterns {
		a, b := got.Patterns[i], want.Patterns[i]
		if a.Support != b.Support || a.Exact != b.Exact ||
			a.Occurrences != b.Occurrences || a.Instances != b.Instances ||
			a.Pattern.String() != b.Pattern.String() {
			t.Fatalf("pattern %d differs:\n got %+v %s\nwant %+v %s", i, a, a.Pattern, b, b.Pattern)
		}
	}
	gs, ws := got.Stats, want.Stats
	gs.Elapsed, ws.Elapsed = 0, 0
	if !reflect.DeepEqual(gs, ws) {
		t.Fatalf("stats differ: %+v != %+v", gs, ws)
	}
}

// TestEngineConcurrentEpochHandoff is the Engine-level serving soak: eight
// reader goroutines issue mixed evaluate/mine/session-refresh requests
// against one Engine while a writer applies mutation batches and refreezes.
// Every answer must be identical to a one-shot run against the immutable
// snapshot of the epoch it reports — no torn reads, no cross-epoch mixing.
// Run under -race this also proves the lock architecture sound.
func TestEngineConcurrentEpochHandoff(t *testing.T) {
	g := support.BarabasiAlbert(70, 2, 2, 21)
	eng, err := support.NewEngine(g, support.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := support.SingleEdgePattern(1, 2)
	spec := support.MineSpec{MinSupport: 5, MaxPatternSize: 3}

	const batches = 4
	snaps := make(map[uint64]*support.Snapshot)
	var snapMu sync.Mutex
	s0, e0 := eng.Current()
	snaps[e0] = s0

	type evalRec struct {
		epoch uint64
		json  string
	}
	type mineRec struct {
		epoch uint64
		res   *support.MinerResult
	}
	var recMu sync.Mutex
	var evals []evalRec
	var mines []mineRec

	done := make(chan struct{})
	var wg sync.WaitGroup

	// Four evaluators: lockless snapshot-pinned reads.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := eng.Do(&support.Request{Pattern: p, Measures: []string{"MNI", "MVC"}})
				if err != nil {
					t.Errorf("evaluate: %v", err)
					return
				}
				b, _ := json.Marshal(resp.Evaluation.Results)
				recMu.Lock()
				evals = append(evals, evalRec{resp.Epoch, string(b)})
				recMu.Unlock()
			}
		}()
	}

	// Two one-shot miners.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := eng.Do(&support.Request{Mine: &spec})
				if err != nil {
					t.Errorf("mine: %v", err)
					return
				}
				recMu.Lock()
				mines = append(mines, mineRec{resp.Epoch, resp.Mining})
				recMu.Unlock()
			}
		}()
	}

	// Two warm sessions refreshing across the handoffs; a refresh must equal
	// a cold mine of the epoch it reports.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := eng.OpenSession(spec)
			if err != nil {
				t.Errorf("open session: %v", err)
				return
			}
			defer sess.Close()
			for {
				select {
				case <-done:
					return
				default:
				}
				res, epoch, err := sess.Refresh()
				if err != nil {
					t.Errorf("refresh: %v", err)
					return
				}
				recMu.Lock()
				mines = append(mines, mineRec{epoch, res})
				recMu.Unlock()
			}
		}()
	}

	// The writer: wire a fresh vertex into the graph per batch, hand off.
	// The sleeps give the readers time to land requests on every epoch.
	for i := 0; i < batches; i++ {
		time.Sleep(20 * time.Millisecond)
		id := support.VertexID(2000 + i)
		epoch, err := eng.Update(func(g *support.Graph) error {
			if err := g.AddVertex(id, support.Label(1+i%2)); err != nil {
				return err
			}
			if err := g.AddEdge(id, support.VertexID(i)); err != nil {
				return err
			}
			return g.AddEdge(id, support.VertexID(i+9))
		})
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		snap, ep := eng.Current()
		if ep != epoch {
			t.Fatalf("Current epoch %d after Update returned %d", ep, epoch)
		}
		snapMu.Lock()
		snaps[ep] = snap
		snapMu.Unlock()
	}
	time.Sleep(20 * time.Millisecond)
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}

	// One-shot ground truth per epoch, computed on the retained snapshots.
	wantEval := make(map[uint64]string)
	wantMine := make(map[uint64]*support.MinerResult)
	for ep, snap := range snaps {
		ev, err := support.EvaluateSnapshot(snap, p, support.ContextOptions{}, "MNI", "MVC")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(ev.Results)
		wantEval[ep] = string(b)
		res, err := support.MineSnapshot(snap, support.MinerConfig{MinSupport: 5, MaxPatternSize: 3})
		if err != nil {
			t.Fatal(err)
		}
		wantMine[ep] = res
	}

	epochsSeen := make(map[uint64]int)
	for _, r := range evals {
		want, ok := wantEval[r.epoch]
		if !ok {
			t.Fatalf("evaluation reported unknown epoch %d", r.epoch)
		}
		if r.json != want {
			t.Fatalf("epoch %d evaluation differs from one-shot run:\n got %s\nwant %s", r.epoch, r.json, want)
		}
		epochsSeen[r.epoch]++
	}
	for _, r := range mines {
		want, ok := wantMine[r.epoch]
		if !ok {
			t.Fatalf("mining reported unknown epoch %d", r.epoch)
		}
		assertSameMining(t, r.res, want)
		epochsSeen[r.epoch]++
	}
	if len(evals) == 0 || len(mines) == 0 {
		t.Fatalf("readers barely ran: %d evals, %d mines", len(evals), len(mines))
	}
	if len(epochsSeen) < 2 {
		t.Fatalf("every answer landed on one epoch; the handoff never interleaved")
	}
	t.Logf("verified %d evaluations and %d mining results across epochs %v", len(evals), len(mines), keys(epochsSeen))
}

func keys(m map[uint64]int) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		out = append(out, fmt.Sprintf("%d:%d", k, v))
	}
	return out
}
