// Package support is the public facade of the library: a reimplementation of
// the hypergraph-based support measure framework of Meng and Tu, "Flexible
// and Feasible Support Measures for Mining Frequent Patterns in Large Labeled
// Graphs" (SIGMOD 2017).
//
// The facade re-exports the building blocks a downstream user needs:
//
//   - labeled graphs and patterns (Graph, Pattern, NewGraphBuilder, ...)
//   - graph generators and .lg file I/O
//   - the support measures (MNI, MI, MVC, MIS/MIES, LP relaxations, ...)
//     evaluated through Evaluate or individually through NewMeasure
//   - the frequent-subgraph miner (Mine)
//
// The heavy lifting lives in the internal packages (internal/graph,
// internal/measures, internal/miner, ...); this package keeps a small,
// stable, documented surface. See the examples/ directory for runnable
// programs built exclusively on this facade.
package support

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/measures"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/store"
)

// Re-exported core types. The aliases expose the full method sets of the
// underlying implementations while keeping a single import path for users.
type (
	// Graph is a vertex-labeled undirected graph (the data graph).
	Graph = graph.Graph
	// GraphBuilder incrementally constructs a Graph.
	GraphBuilder = graph.Builder
	// VertexID identifies a vertex of a Graph or a node of a Pattern.
	VertexID = graph.VertexID
	// Label is a vertex label.
	Label = graph.Label
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Pattern is a connected labeled query graph.
	Pattern = pattern.Pattern
	// Occurrence is one isomorphism from a pattern into the data graph.
	Occurrence = isomorph.Occurrence
	// Instance is one subgraph of the data graph isomorphic to the pattern.
	Instance = isomorph.Instance
	// Context bundles a (graph, pattern) pair with its occurrence and
	// instance hypergraphs; build one with NewContext and evaluate measures
	// on it.
	Context = core.Context
	// Measure computes a support value on a Context.
	Measure = measures.Measure
	// Result is one computed support value.
	Result = measures.Result
	// Evaluation maps measure names to Results for one Context.
	Evaluation = measures.Evaluation
	// MinerConfig configures frequent-pattern mining.
	MinerConfig = miner.Config
	// MinerResult is the outcome of a mining run.
	MinerResult = miner.Result
	// FrequentPattern is one mined frequent pattern with its support.
	FrequentPattern = miner.FrequentPattern
	// DeltaContext keeps streamed support aggregates (occurrence/instance
	// counts, MNI domain tables) alive across graph mutations; build one with
	// NewDeltaContext and call Refresh after mutating the graph.
	DeltaContext = core.DeltaContext
	// DeltaStats counts the maintenance work a DeltaContext has done.
	DeltaStats = core.DeltaStats
	// IncrementalMiner is a mining session that stays warm across graph
	// mutations; start one with MineIncremental.
	IncrementalMiner = miner.Incremental
	// Mutation is one structural graph mutation as recorded by a graph's
	// mutation feed (see Graph.Subscribe).
	Mutation = graph.Mutation
	// MutationFeed is a pull-based subscription to a graph's mutations.
	MutationFeed = graph.MutationFeed
	// Snapshot is an immutable sharded CSR view of a Graph, the structure
	// all enumeration runs on; obtain one with Graph.Freeze/FreezeSharded or
	// from an out-of-core store via OpenStore.
	Snapshot = graph.Snapshot
	// FreezeOptions controls the shard partition of Graph.FreezeSharded.
	FreezeOptions = graph.FreezeOptions
	// Store is an open out-of-core shard store: mmap-backed segments served
	// as a Snapshot under a residency-managed paging budget. See OpenStore.
	Store = store.Store
	// StoreOptions configures OpenStore (residency budget, checksum
	// verification).
	StoreOptions = store.Options
	// StoreManifest describes a store directory (totals, shard geometry,
	// per-segment checksums).
	StoreManifest = store.Manifest
	// ResidencyStats is the paging accounting of an open Store.
	ResidencyStats = store.ResidencyStats
	// Figure is a built-in worked example from the paper.
	Figure = dataset.Figure
	// PlanExplanation reports the search order the enumeration engine would
	// use for a (snapshot, pattern) pair, with the per-depth statistics that
	// led to it; obtain one with ExplainPlan.
	PlanExplanation = isomorph.PlanExplanation
	// PlanStep is one depth of a PlanExplanation.
	PlanStep = isomorph.PlanStep
)

// Canonical measure names accepted by NewMeasure and reported in Results.
const (
	MNI           = measures.NameMNI
	MNIK          = measures.NameMNIK
	MI            = measures.NameMI
	MVC           = measures.NameMVC
	MVCApprox     = measures.NameMVCApprox
	MIS           = measures.NameMIS
	MIES          = measures.NameMIES
	MIESGreedy    = measures.NameMIESGreedy
	NuMVC         = measures.NameNuMVC
	NuMIES        = measures.NameNuMIES
	MCP           = measures.NameMCP
	MISHarmful    = measures.NameMISHarmful
	MISStructural = measures.NameMISStructural
	Occurrences   = measures.NameOccurrences
	Instances     = measures.NameInstances
)

// NewGraph returns an empty labeled graph with the given name.
func NewGraph(name string) *Graph { return graph.New(name) }

// NewGraphBuilder returns a builder for a new graph with the given name.
func NewGraphBuilder(name string) *GraphBuilder { return graph.NewBuilder(name) }

// NewPattern wraps a connected labeled graph as a query pattern.
func NewPattern(g *Graph) (*Pattern, error) { return pattern.New(g) }

// SingleEdgePattern returns the one-edge pattern with the two given labels.
func SingleEdgePattern(a, b Label) *Pattern { return pattern.SingleEdge(a, b) }

// ReadLG parses a graph in the GraMi-style .lg text format.
func ReadLG(r io.Reader, name string) (*Graph, error) { return dataset.ReadLG(r, name) }

// WriteLG writes a graph in the .lg text format.
func WriteLG(w io.Writer, g *Graph) error { return dataset.WriteLG(w, g) }

// LoadLGFile reads a .lg graph from a file.
func LoadLGFile(path string) (*Graph, error) { return dataset.LoadLGFile(path) }

// SaveLGFile writes a graph to a file in .lg format.
func SaveLGFile(path string, g *Graph) error { return dataset.SaveLGFile(path, g) }

// PaperFigures returns the worked examples of the paper (Figures 1-10) as
// ready-made (graph, pattern) fixtures with their expected support values.
func PaperFigures() []Figure { return dataset.AllFigures() }

// ErdosRenyi generates a G(n, p) random graph with labels drawn uniformly
// from 1..labelCount.
func ErdosRenyi(n int, p float64, labelCount int, seed uint64) *Graph {
	return gen.ErdosRenyi(n, p, gen.UniformLabels{K: labelCount}, seed)
}

// BarabasiAlbert generates an n-vertex preferential-attachment graph with m
// edges per new vertex and labels drawn uniformly from 1..labelCount.
func BarabasiAlbert(n, m, labelCount int, seed uint64) *Graph {
	return gen.BarabasiAlbert(n, m, gen.UniformLabels{K: labelCount}, seed)
}

// RandomGeometric generates a random geometric graph in the unit square.
func RandomGeometric(n int, radius float64, labelCount int, seed uint64) *Graph {
	return gen.RandomGeometric(n, radius, gen.UniformLabels{K: labelCount}, seed)
}

// ContextOptions controls occurrence enumeration when building a Context.
//
// Deprecated: ContextOptions predates the unified EngineOptions surface and
// is kept for compatibility; it remains fully functional. New code should
// construct an Engine with EngineOptions (or keep calling the thin wrappers,
// which translate for you).
type ContextOptions struct {
	// MaxOccurrences caps occurrence enumeration; zero means unlimited. A
	// positive cap forces sequential enumeration so the kept prefix is
	// deterministic.
	MaxOccurrences int
	// Parallelism is the worker count of the streaming enumeration engine:
	// 0 picks GOMAXPROCS (with a sequential fallback on tiny inputs), 1
	// forces the deterministic sequential path, higher values are used as
	// given. The resulting Context is identical for every setting.
	Parallelism int
	// Shards is the CSR shard count of the frozen snapshot enumeration runs
	// on: 0 keeps the graph's automatic sharding (one shard up to 65536
	// vertices), positive values split the vertex range into at most that
	// many contiguous, independently allocated shards that parallel workers
	// drain cache-locally. The resulting Context is identical for every
	// setting.
	Shards int
	// DisablePlanner disables the data-aware search-order planner of the
	// enumeration engine, falling back to the pattern-only heuristic order.
	// DisableKernels disables its intersection kernels (memoized candidate
	// runs, galloping intersection, adjacency bitsets), falling back to
	// seed-and-probe matching. Both default to off — the optimized paths are
	// the production configuration — and exist as A/B switches for
	// benchmarking and debugging; results are identical for every setting.
	DisablePlanner bool
	DisableKernels bool
	// Streaming skips materializing the occurrence list and hypergraphs;
	// occurrences are folded into incremental aggregates as they stream out
	// of the enumeration workers. Only MNI and the raw occurrence/instance
	// counts can be computed on a streaming context.
	Streaming bool
	// Snapshot pins context construction to an explicit frozen snapshot —
	// above all a store-opened, mmap-backed one — instead of freezing the
	// graph argument, which may then be nil. Shards is ignored: the
	// snapshot's own shard geometry applies.
	Snapshot *Snapshot
}

// engineOptions projects the deprecated ContextOptions onto the unified
// EngineOptions surface (the Snapshot field travels separately: it selects
// the engine's source, not an option).
func (o ContextOptions) engineOptions() EngineOptions {
	return EngineOptions{
		MaxOccurrences: o.MaxOccurrences,
		Parallelism:    o.Parallelism,
		Shards:         o.Shards,
		DisablePlanner: o.DisablePlanner,
		DisableKernels: o.DisableKernels,
		Streaming:      o.Streaming,
	}
}

// engineOptionsFromMiner collects the enumeration-level knobs scattered over
// a MinerConfig into EngineOptions; mineSpec collects the mining-level rest.
func engineOptionsFromMiner(cfg MinerConfig) EngineOptions {
	return EngineOptions{
		MaxOccurrences: cfg.MaxOccurrences,
		Parallelism:    cfg.EnumParallelism,
		Shards:         cfg.EnumShards,
		DisablePlanner: cfg.EnumDisablePlanner,
		DisableKernels: cfg.EnumDisableKernels,
		Streaming:      cfg.Streaming,
	}
}

// mineSpec collects the mining-level knobs of a MinerConfig into a MineSpec.
func mineSpec(cfg MinerConfig) *MineSpec {
	return &MineSpec{
		MinSupport:          cfg.MinSupport,
		MaxPatternSize:      cfg.MaxPatternSize,
		MaxPatterns:         cfg.MaxPatterns,
		Measure:             cfg.Measure,
		Workers:             cfg.Parallelism,
		MaterializeContexts: cfg.MaterializeContexts,
	}
}

// NewContext enumerates the occurrences and instances of p in g and builds
// the occurrence/instance hypergraphs all measures are computed from. With
// opts.Streaming the hypergraphs and occurrence list are skipped and only
// MNI and the raw counts can be evaluated on the returned context.
func NewContext(g *Graph, p *Pattern, opts ContextOptions) (*Context, error) {
	return core.NewContext(g, p, core.Options{
		MaxOccurrences: opts.MaxOccurrences,
		Parallelism:    opts.Parallelism,
		Shards:         opts.Shards,
		DisablePlanner: opts.DisablePlanner,
		DisableKernels: opts.DisableKernels,
		Streaming:      opts.Streaming,
		Snapshot:       opts.Snapshot,
	})
}

// ExplainPlan compiles — without running it — the search plan the enumeration
// engine would use for pattern p over the given snapshot (freeze a Graph or
// open a Store to obtain one), returning the chosen search order with the
// per-depth candidate estimates and inner-loop kernels. Render it with its
// String method. It powers the -explain flags of the gsupport and gminer
// CLIs.
func ExplainPlan(snap *Snapshot, p *Pattern, opts ContextOptions) *PlanExplanation {
	return isomorph.Explain(snap, p, isomorph.Options{
		Parallelism:    opts.Parallelism,
		DisablePlanner: opts.DisablePlanner,
		DisableKernels: opts.DisableKernels,
	})
}

// MeasureNames returns every measure name known to NewMeasure, sorted.
func MeasureNames() []string { return measures.NewRegistry().Names() }

// NewMeasure returns the measure registered under the given canonical name.
func NewMeasure(name string) (Measure, error) { return measures.NewRegistry().New(name) }

// Evaluate computes the given measures (all default measures when none are
// named) for pattern p in graph g and returns the evaluation. It is the
// one-call entry point for "what is the support of this pattern?".
func Evaluate(g *Graph, p *Pattern, names ...string) (*Evaluation, error) {
	return EvaluateWithOptions(g, p, ContextOptions{}, names...)
}

// EvaluateWithOptions is Evaluate with explicit context options: enumeration
// parallelism, streaming mode and the occurrence cap. On a streaming context
// with no explicit measure names only the streaming-capable measures (MNI and
// the raw counts) are evaluated. It is a thin wrapper over the Engine path:
// a throwaway Engine is built and the evaluation runs as one Request.
func EvaluateWithOptions(g *Graph, p *Pattern, opts ContextOptions, names ...string) (*Evaluation, error) {
	if opts.Snapshot != nil {
		return EvaluateSnapshot(opts.Snapshot, p, opts, names...)
	}
	if g == nil || p == nil {
		return nil, fmt.Errorf("core: nil graph or pattern")
	}
	e, err := NewEngine(g, opts.engineOptions())
	if err != nil {
		return nil, err
	}
	resp, err := e.Do(&Request{Pattern: p, Measures: names})
	if err != nil {
		return nil, err
	}
	return resp.Evaluation, nil
}

// NewDeltaContext builds the streamed aggregates of p in g and keeps them
// alive across graph mutations: call Refresh on the returned context after
// AddVertex/AddEdge batches and it applies exact occurrence deltas (restricted
// to the mutated region) instead of re-enumerating the graph. Evaluate
// streaming-capable measures (MNI, the raw counts) on DeltaContext.Context().
// opts.Streaming is implied and opts.MaxOccurrences must be zero.
func NewDeltaContext(g *Graph, p *Pattern, opts ContextOptions) (*DeltaContext, error) {
	return core.NewDeltaContext(g, p, core.Options{
		MaxOccurrences: opts.MaxOccurrences,
		Parallelism:    opts.Parallelism,
		Shards:         opts.Shards,
		DisablePlanner: opts.DisablePlanner,
		DisableKernels: opts.DisableKernels,
	})
}

// VerifyBoundingChain evaluates every measure of the paper's bounding chain
// for p in g and returns an error if any inequality of
//
//	MIS = MIES <= nuMIES = nuMVC <= MVC <= MI <= MNI
//
// is violated. It is primarily a correctness oracle for tests and examples.
func VerifyBoundingChain(g *Graph, p *Pattern) error {
	ev, err := Evaluate(g, p)
	if err != nil {
		return err
	}
	return ev.VerifyBoundingChain()
}

// Mine runs the frequent-subgraph miner over g with the given configuration.
// The zero MeasureName means MNI. See MinerConfig for all knobs. It is a
// thin wrapper over the Engine path: the graph is frozen once and the run
// executes as one mining Request on the pinned snapshot.
func Mine(g *Graph, cfg MinerConfig) (*MinerResult, error) {
	if g == nil {
		return nil, fmt.Errorf("miner: nil data graph")
	}
	e, err := NewEngine(g, engineOptionsFromMiner(cfg))
	if err != nil {
		return nil, err
	}
	resp, err := e.Do(&Request{Mine: mineSpec(cfg)})
	if err != nil {
		return nil, err
	}
	return resp.Mining, nil
}

// MineIncremental starts an incremental mining session over g: the initial
// result equals Mine's, and after graph mutations IncrementalMiner.Refresh
// re-answers the frequent-pattern question from live delta-maintained
// support state instead of a cold re-mine. Requires a streaming-capable
// measure (the default MNI is) and zero MaxOccurrences/MaxPatterns; close
// the session when done. It is the in-process, engine-less form of
// Engine.OpenSession (which adds the writer/reader locking a long-lived
// server needs).
func MineIncremental(g *Graph, cfg MinerConfig) (*IncrementalMiner, error) {
	return miner.NewIncremental(g, cfg)
}

// WriteStore persists a frozen snapshot as an out-of-core shard store in
// dir: one flat, checksummed binary segment per CSR shard plus a manifest.
// Open it again — in this process or any other — with OpenStore.
func WriteStore(snap *Snapshot, dir string) error { return store.Write(snap, dir) }

// OpenStore opens the shard store at dir and serves it as an mmap-backed
// Snapshot (Store.Snapshot): shard arrays alias the mapped segment bytes
// with no deserialization copy, and a residency manager pages shards in on
// first drain and evicts cold ones under opts' byte budget, so stores
// larger than RAM enumerate and mine with results identical to the
// in-memory snapshot they were written from. Close the store when its
// snapshot is no longer in use.
func OpenStore(dir string, opts StoreOptions) (*Store, error) { return store.Open(dir, opts) }

// OpenStoreWithBudget is OpenStore with the residency budget given in
// ParseResidencyBudget syntax (bytes, "64MiB", "25%"; empty = unlimited) —
// the one-call form behind the CLI -store/-residency flag pairs.
func OpenStoreWithBudget(dir, budget string) (*Store, error) {
	return store.OpenWithBudget(dir, budget)
}

// ParseResidencyBudget parses a residency budget string: plain bytes
// ("8388608"), binary sizes ("64MiB"), or a percentage of the store's
// mapped bytes ("25%"). It is the syntax of the CLI -residency flags and of
// the store.BudgetEnv environment override.
func ParseResidencyBudget(s string) (bytes int64, frac float64, err error) {
	return store.ParseBudget(s)
}

// MineSnapshot runs the frequent-subgraph miner directly over a frozen
// snapshot — typically a store-opened, mmap-backed one — with no mutable
// Graph required. Results are identical to Mine on the graph the snapshot
// was frozen from; cfg.EnumShards is ignored in favor of the snapshot's own
// shard geometry.
func MineSnapshot(snap *Snapshot, cfg MinerConfig) (*MinerResult, error) {
	if snap == nil {
		return nil, fmt.Errorf("miner: nil snapshot")
	}
	e, err := NewSnapshotEngine(snap, engineOptionsFromMiner(cfg))
	if err != nil {
		return nil, err
	}
	resp, err := e.Do(&Request{Mine: mineSpec(cfg)})
	if err != nil {
		return nil, err
	}
	return resp.Mining, nil
}

// EvaluateSnapshot computes the given measures (all default measures when
// none are named) for pattern p over an explicit frozen snapshot —
// typically a store-opened, mmap-backed one. It is Evaluate for data that
// has no mutable Graph behind it.
func EvaluateSnapshot(snap *Snapshot, p *Pattern, opts ContextOptions, names ...string) (*Evaluation, error) {
	if snap == nil || p == nil {
		return nil, fmt.Errorf("core: nil graph or pattern")
	}
	e, err := NewSnapshotEngine(snap, opts.engineOptions())
	if err != nil {
		return nil, err
	}
	resp, err := e.Do(&Request{Pattern: p, Measures: names})
	if err != nil {
		return nil, err
	}
	return resp.Evaluation, nil
}

// MineWithMeasure is a convenience wrapper around Mine that selects the
// support measure by canonical name.
func MineWithMeasure(g *Graph, measureName string, minSupport float64, maxPatternSize int) (*MinerResult, error) {
	m, err := NewMeasure(measureName)
	if err != nil {
		return nil, err
	}
	return Mine(g, MinerConfig{
		MinSupport:     minSupport,
		MaxPatternSize: maxPatternSize,
		Measure:        m,
	})
}

// FormatEvaluation renders an evaluation as a small human-readable report,
// one measure per line in bounding-chain order where applicable.
func FormatEvaluation(ev *Evaluation) string {
	order := []string{
		Occurrences, Instances, MIS, MIES, NuMIES, NuMVC, MVC, MVCApprox, MI, MNI, MCP,
	}
	out := ""
	seen := make(map[string]bool)
	for _, name := range order {
		if r, ok := ev.Results[name]; ok {
			out += fmt.Sprintf("%-12s %s\n", name, r.String())
			seen[name] = true
		}
	}
	for _, name := range ev.Names() {
		if !seen[name] {
			out += fmt.Sprintf("%-12s %s\n", name, ev.Results[name].String())
		}
	}
	return out
}
